#include "sf/generators.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/numtheory.hpp"
#include "util/rng.hpp"

namespace slimfly::sf {

int delta_of_q(int q) {
  switch (q % 4) {
    case 0: return 0;
    case 1: return 1;
    case 3: return -1;
    default:
      throw std::invalid_argument("MMS: q = 2 (mod 4) has no construction");
  }
}

bool is_valid_mms_q(int q) {
  if (q < 3 || q % 4 == 2) return false;
  return slimfly::as_prime_power(q).has_value();
}

bool is_symmetric_set(const gf::Field& field, const std::vector<int>& set) {
  for (int e : set) {
    if (std::find(set.begin(), set.end(), field.neg(e)) == set.end()) return false;
  }
  return true;
}

bool covers_with_sums(const gf::Field& field, const std::vector<int>& set) {
  int q = field.q();
  std::vector<bool> covered(static_cast<std::size_t>(q), false);
  for (int e : set) covered[static_cast<std::size_t>(e)] = true;
  for (int a : set) {
    for (int b : set) covered[static_cast<std::size_t>(field.add(a, b))] = true;
  }
  for (int e = 1; e < q; ++e) {
    if (!covered[static_cast<std::size_t>(e)]) return false;
  }
  return true;
}

namespace {

bool sets_cover_units(const gf::Field& field, const GeneratorSets& gens) {
  int q = field.q();
  std::vector<bool> covered(static_cast<std::size_t>(q), false);
  for (int e : gens.x) covered[static_cast<std::size_t>(e)] = true;
  for (int e : gens.xprime) covered[static_cast<std::size_t>(e)] = true;
  for (int e = 1; e < q; ++e) {
    if (!covered[static_cast<std::size_t>(e)]) return false;
  }
  return true;
}

bool has_zero_or_dup(const std::vector<int>& set) {
  std::vector<int> sorted = set;
  std::sort(sorted.begin(), sorted.end());
  if (!sorted.empty() && sorted.front() == 0) return true;
  return std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end();
}

/// Canonical candidate per residue class (see header).
GeneratorSets canonical_candidate(const gf::Field& field) {
  int q = field.q();
  int xi = field.primitive_element();
  int delta = delta_of_q(q);
  GeneratorSets gens;
  if (delta == 1) {
    // Paper formula: X = {1, xi^2, ..., xi^(q-3)}, X' = {xi, xi^3, ..., xi^(q-2)}.
    for (int i = 0; i <= q - 3; i += 2) gens.x.push_back(field.pow(xi, i));
    for (int i = 1; i <= q - 2; i += 2) gens.xprime.push_back(field.pow(xi, i));
  } else if (delta == -1) {
    // Paired power sets {±xi^(2i)} and {±xi^(2i+1)}, i = 0..w-1, w = (q+1)/4.
    int w = (q + 1) / 4;
    for (int i = 0; i < w; ++i) {
      int even = field.pow(xi, 2 * i);
      int odd = field.pow(xi, 2 * i + 1);
      gens.x.push_back(even);
      gens.x.push_back(field.neg(even));
      gens.xprime.push_back(odd);
      gens.xprime.push_back(field.neg(odd));
    }
  } else {
    // Characteristic 2: negation is the identity, so any set is symmetric.
    // Even exponents give q/2 elements (the exponent range 0..q-2 has odd
    // length); odd exponents give q/2 - 1, topped up with the unit element.
    for (int i = 0; i <= q - 2; i += 2) gens.x.push_back(field.pow(xi, i));
    for (int i = 1; i <= q - 2; i += 2) gens.xprime.push_back(field.pow(xi, i));
    gens.xprime.push_back(1);
  }
  return gens;
}

/// Symmetric building blocks: in odd characteristic the {e, -e} pairs; in
/// characteristic 2 the singletons (every set is symmetric there).
std::vector<std::vector<int>> symmetric_blocks(const gf::Field& field) {
  std::vector<std::vector<int>> blocks;
  std::vector<bool> seen(static_cast<std::size_t>(field.q()), false);
  for (int e = 1; e < field.q(); ++e) {
    if (seen[static_cast<std::size_t>(e)]) continue;
    int ne = field.neg(e);
    seen[static_cast<std::size_t>(e)] = true;
    if (ne != e) {
      seen[static_cast<std::size_t>(ne)] = true;
      blocks.push_back({e, ne});
    } else {
      blocks.push_back({e});
    }
  }
  return blocks;
}

/// Randomized fallback: sample symmetric sets of the right size until the
/// diameter-2 conditions hold.
GeneratorSets search_generators(const gf::Field& field) {
  int q = field.q();
  int delta = delta_of_q(q);
  std::size_t target = static_cast<std::size_t>((q - delta) / 2);
  auto blocks = symmetric_blocks(field);
  Rng rng(std::uint64_t{0x5f1f5f1f} + static_cast<std::uint64_t>(q));

  for (int attempt = 0; attempt < 200000; ++attempt) {
    std::shuffle(blocks.begin(), blocks.end(), rng);
    GeneratorSets gens;
    std::size_t i = 0;
    while (i < blocks.size() && gens.x.size() + blocks[i].size() <= target) {
      gens.x.insert(gens.x.end(), blocks[i].begin(), blocks[i].end());
      ++i;
    }
    if (gens.x.size() != target) continue;
    if (!covers_with_sums(field, gens.x)) continue;

    // X' must contain every unit missing from X (condition B); fill the
    // remainder with blocks drawn from anywhere, preferring coverage.
    std::vector<bool> in_x(static_cast<std::size_t>(q), false);
    for (int e : gens.x) in_x[static_cast<std::size_t>(e)] = true;
    for (const auto& block : blocks) {
      if (!in_x[static_cast<std::size_t>(block.front())]) {
        gens.xprime.insert(gens.xprime.end(), block.begin(), block.end());
      }
    }
    if (gens.xprime.size() > target) continue;
    for (const auto& block : blocks) {
      if (gens.xprime.size() + block.size() > target) continue;
      if (in_x[static_cast<std::size_t>(block.front())]) {
        gens.xprime.insert(gens.xprime.end(), block.begin(), block.end());
      }
      if (gens.xprime.size() == target) break;
    }
    if (gens.xprime.size() != target) continue;
    if (!covers_with_sums(field, gens.xprime)) continue;
    if (check_diameter2_conditions(field, gens)) return gens;
  }
  throw std::runtime_error("MMS generators: search failed for q=" + std::to_string(q));
}

}  // namespace

bool check_diameter2_conditions(const gf::Field& field, const GeneratorSets& gens) {
  int q = field.q();
  int delta = delta_of_q(q);
  std::size_t target = static_cast<std::size_t>((q - delta) / 2);
  if (gens.x.size() != target || gens.xprime.size() != target) return false;
  if (has_zero_or_dup(gens.x) || has_zero_or_dup(gens.xprime)) return false;
  if (!is_symmetric_set(field, gens.x) || !is_symmetric_set(field, gens.xprime)) {
    return false;
  }
  if (!sets_cover_units(field, gens)) return false;
  return covers_with_sums(field, gens.x) && covers_with_sums(field, gens.xprime);
}

GeneratorSets make_generators(const gf::Field& field) {
  if (!is_valid_mms_q(field.q())) {
    throw std::invalid_argument("MMS generators: unsupported q");
  }
  GeneratorSets gens = canonical_candidate(field);
  if (check_diameter2_conditions(field, gens)) return gens;
  return search_generators(field);
}

}  // namespace slimfly::sf
