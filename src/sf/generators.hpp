#pragma once
// Generator sets X, X' for the MMS construction (paper Section II-B1,
// Step 2).
//
// The paper states the formula only for delta = +1 and defers to Hafner for
// the other residue classes. Rather than transcribing formulas, this module
// derives the exact conditions that make the resulting graph have diameter
// two — they follow directly from connection equations (1)-(3):
//
//   A1:  X  union (X + X )  contains GF(q)^*      (same-column pairs in subgraph 0)
//   A2:  X' union (X' + X') contains GF(q)^*      (same-row pairs in subgraph 1)
//   B :  X  union X'        contains GF(q)^*      (cross-subgraph pairs)
//   S :  X = -X and X' = -X'                      (edges are undirected)
//
// together with |X| = |X'| = (q - delta)/2, which fixes the network radix
// at k' = (3q - delta)/2. Cross-subgraph pairs with distinct x (or distinct
// m) always have exactly one common neighbour, so A1/A2/B/S are necessary
// *and* sufficient for diameter 2.
//
// make_generators() first tries the canonical candidates (quadratic
// residues / non-residues for delta = +1 exactly as in the paper; paired
// power sets for delta = -1; even/odd exponent sets for delta = 0) and
// falls back to a seeded randomized search over symmetric sets when a
// candidate fails the conditions. Every returned pair is verified.

#include <vector>

#include "gf/gf.hpp"

namespace slimfly::sf {

struct GeneratorSets {
  std::vector<int> x;       ///< X  — subgraph-0 intra-group generator set
  std::vector<int> xprime;  ///< X' — subgraph-1 intra-group generator set
};

/// delta in {-1, 0, +1} with q = 4w + delta; throws for q = 2 (mod 4).
int delta_of_q(int q);

/// True iff q is a prime power supporting an MMS construction (q >= 3 and
/// q mod 4 != 2).
bool is_valid_mms_q(int q);

/// Checks symmetry (S) of a set under field negation.
bool is_symmetric_set(const gf::Field& field, const std::vector<int>& set);

/// Checks coverage condition  set ∪ (set+set) ⊇ GF(q)^*  (A1/A2).
bool covers_with_sums(const gf::Field& field, const std::vector<int>& set);

/// Checks all four diameter-2 conditions for the pair (X, X').
bool check_diameter2_conditions(const gf::Field& field, const GeneratorSets& gens);

/// Produces verified generator sets; throws std::runtime_error if none can
/// be found (does not happen for any supported q <= 4096 we test).
GeneratorSets make_generators(const gf::Field& field);

}  // namespace slimfly::sf
