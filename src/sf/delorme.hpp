#pragma once
// Delorme graphs (paper Section II-C): the best-known diameter-3 family,
// reaching 68% of the Moore bound.
//
// The paper uses Delorme graphs only in the Figure 5b Moore-bound
// comparison, via their closed-form sizes: Nr = (v+1)^2 (v^2+1)^2 and
// k' = (v+1)^2 for a prime power v. The underlying construction (based on
// generalized hexagons) is not needed by any experiment and is therefore
// modelled, not instantiated (see DESIGN.md §2.3).

#include <vector>

namespace slimfly::sf {

struct DelormeModel {
  int v = 0;
  long long k_net = 0;
  long long num_routers = 0;
};

/// Closed-form Delorme size for prime power v.
DelormeModel delorme_model(int v);

/// All Delorme models with network radix up to max_k_net.
std::vector<DelormeModel> delorme_family(int max_k_net);

}  // namespace slimfly::sf
