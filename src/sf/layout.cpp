#include "sf/layout.hpp"

#include <stdexcept>

namespace slimfly::sf {

long long cables_between_racks(const SlimFlyMMS& topo, int rack_i, int rack_j) {
  long long count = 0;
  const Graph& g = topo.graph();
  for (int r = 0; r < topo.num_routers(); ++r) {
    if (topo.rack_of_router(r) != rack_i) continue;
    for (int s : g.neighbors(r)) {
      if (topo.rack_of_router(s) == rack_j) ++count;
    }
  }
  return count;
}

MmsLayout compute_layout(const SlimFlyMMS& topo) {
  MmsLayout layout;
  layout.q = topo.q();
  layout.num_racks = topo.num_racks();
  layout.routers_per_rack = 2 * topo.q();
  layout.endpoints_per_rack = layout.routers_per_rack * topo.concentration();

  const Graph& g = topo.graph();
  long long intra = 0;
  long long inter = 0;
  for (const auto& [u, v] : g.edges()) {
    if (topo.rack_of_router(u) == topo.rack_of_router(v)) ++intra;
    else ++inter;
  }
  layout.total_electric = intra;
  layout.total_fiber = inter;
  if (intra % layout.num_racks != 0) {
    throw std::logic_error("MmsLayout: racks are not cabled identically");
  }
  layout.intra_rack_cables = intra / layout.num_racks;
  // Every pair of racks is joined by the same number of cables (2q for
  // prime q as shown in the paper; the generic value is verified here).
  long long pairs = static_cast<long long>(layout.num_racks) *
                    (layout.num_racks - 1) / 2;
  if (inter % pairs != 0) {
    throw std::logic_error("MmsLayout: rack pairs are not cabled identically");
  }
  layout.inter_rack_cables = inter / pairs;
  return layout;
}

}  // namespace slimfly::sf
