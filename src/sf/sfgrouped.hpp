#pragma once
// Section VII-B: "An interesting option is to use SF to implement groups
// (higher-radix logical routers) of a DF or to connect multiple groups of
// a DF topology."
//
// This module implements that idea: g groups, each an identical Slim Fly
// MMS graph, connected pairwise like Dragonfly groups. Each router donates
// `h` global ports; group pairs receive an equal share of links with
// round-robin router selection (same balancing discipline as the Dragonfly
// builder). The result is a three-level hierarchy whose groups have
// diameter 2 instead of the Dragonfly's diameter-1 cliques — trading one
// intra-group hop for far larger (2q^2 vs a) groups per radix.

#include <memory>

#include "sf/mms.hpp"
#include "topo/topology.hpp"

namespace slimfly::sf {

class SfGroupedDragonfly : public Topology {
 public:
  /// g groups of SlimFly(q) routers, h global ports per router,
  /// concentration p per router (0 = the SF balanced value).
  /// Requires 2 <= g <= 2q^2 * h + 1.
  SfGroupedDragonfly(int q, int h, int groups, int concentration = 0);

  std::string name() const override;
  std::string symbol() const override { return "SF-DF"; }

  int q() const { return q_; }
  int h() const { return h_; }
  int groups() const { return groups_; }
  int group_size() const { return 2 * q_ * q_; }
  int group_of(int r) const { return r / group_size(); }

  /// Diameter bound: 2 (src group) + 1 (global) + 2 (dst group).
  static constexpr int kDiameterBound = 5;

  int num_racks() const override { return groups_ * q_; }
  int rack_of_router(int r) const override;

 private:
  static Graph build(int q, int h, int groups);
  int q_, h_, groups_;
};

}  // namespace slimfly::sf
