#include "sf/enumerate.hpp"

#include <algorithm>
#include <cmath>

#include "sf/generators.hpp"
#include "sf/mms.hpp"

namespace slimfly::sf {

std::vector<SlimFlyConfig> enumerate_slimfly(int max_endpoints) {
  std::vector<SlimFlyConfig> configs;
  // The enumeration starts at q = 4 to match the paper's library of
  // practical designs (11 configurations <= 20k endpoints); q = 3 (N = 54)
  // is constructible but below any practical deployment size.
  for (int q = 4;; ++q) {
    if (!is_valid_mms_q(q)) continue;
    SlimFlyConfig c;
    c.q = q;
    c.delta = delta_of_q(q);
    c.k_net = (3 * q - c.delta) / 2;
    c.concentration = SlimFlyMMS::balanced_concentration(q);
    c.router_radix = c.k_net + c.concentration;
    c.num_routers = 2 * q * q;
    c.num_endpoints = c.num_routers * c.concentration;
    if (c.num_endpoints > max_endpoints) break;
    configs.push_back(c);
  }
  std::sort(configs.begin(), configs.end(),
            [](const auto& a, const auto& b) { return a.num_endpoints < b.num_endpoints; });
  return configs;
}

std::vector<DragonflyConfig> enumerate_dragonfly(int max_endpoints) {
  std::vector<DragonflyConfig> configs;
  for (int p = 1;; ++p) {
    DragonflyConfig c;
    c.p = p;
    c.a = 2 * p;
    c.h = p;
    c.g = c.a * c.h + 1;
    c.router_radix = c.p + (c.a - 1) + c.h;  // k = p + a-1 + h = 4p - 1
    c.num_routers = c.a * c.g;
    c.num_endpoints = c.num_routers * p;
    if (c.num_endpoints > max_endpoints) break;
    configs.push_back(c);
  }
  return configs;
}

std::optional<SlimFlyConfig> pick_slimfly(int min_endpoints) {
  auto configs = enumerate_slimfly(4 * std::max(min_endpoints, 1));
  for (const auto& c : configs) {
    if (c.num_endpoints >= min_endpoints) return c;
  }
  return std::nullopt;
}

std::optional<SlimFlyConfig> closest_slimfly(int target_endpoints) {
  auto configs = enumerate_slimfly(4 * std::max(target_endpoints, 1));
  if (configs.empty()) return std::nullopt;
  return *std::min_element(configs.begin(), configs.end(),
                           [&](const auto& a, const auto& b) {
                             return std::abs(a.num_endpoints - target_endpoints) <
                                    std::abs(b.num_endpoints - target_endpoints);
                           });
}

}  // namespace slimfly::sf
