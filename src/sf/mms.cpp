#include "sf/mms.hpp"

#include <stdexcept>

namespace slimfly::sf {

SlimFlyMMS::Built SlimFlyMMS::build(int q) {
  if (!is_valid_mms_q(q)) {
    throw std::invalid_argument("SlimFlyMMS: q must be a prime power with q mod 4 != 2");
  }
  gf::Field field(q);
  GeneratorSets gens = make_generators(field);

  Graph graph(2 * q * q);
  auto id = [q](int s, int x, int y) { return s * q * q + x * q + y; };

  // Eq. (1): (0,x,y) ~ (0,x,y') iff y - y' in X. X is symmetric, so adding
  // y' = y - e for every e in X covers both directions.
  for (int x = 0; x < q; ++x) {
    for (int y = 0; y < q; ++y) {
      for (int e : gens.x) {
        int y2 = field.sub(y, e);
        if (y < y2) graph.add_edge(id(0, x, y), id(0, x, y2));
      }
      // Eq. (2): (1,m,c) ~ (1,m,c') iff c - c' in X'.
      for (int e : gens.xprime) {
        int c2 = field.sub(y, e);
        if (y < c2) graph.add_edge(id(1, x, y), id(1, x, c2));
      }
    }
  }
  // Eq. (3): (0,x,y) ~ (1,m,c) iff y = m*x + c.
  for (int m = 0; m < q; ++m) {
    for (int c = 0; c < q; ++c) {
      for (int x = 0; x < q; ++x) {
        int y = field.add(field.mul(m, x), c);
        graph.add_edge(id(0, x, y), id(1, m, c));
      }
    }
  }
  graph.finalize();
  return Built{std::move(graph), std::move(field), std::move(gens)};
}

int SlimFlyMMS::balanced_concentration(int q) {
  int k_net = (3 * q - delta_of_q(q)) / 2;
  return (k_net + 1) / 2;  // ceil(k'/2), Section II-B2
}

SlimFlyMMS::SlimFlyMMS(Built built, int q, int concentration)
    : Topology(std::move(built.graph),
               concentration == 0 ? balanced_concentration(q) : concentration,
               2 * q * q),
      q_(q),
      delta_(delta_of_q(q)),
      field_(std::move(built.field)),
      generators_(std::move(built.gens)) {}

SlimFlyMMS::SlimFlyMMS(int q, int concentration)
    : SlimFlyMMS(build(q), q, concentration) {}

std::string SlimFlyMMS::name() const {
  return "Slim Fly MMS (q=" + std::to_string(q_) +
         ", k'=" + std::to_string(k_net()) + ", p=" + std::to_string(concentration()) + ")";
}

}  // namespace slimfly::sf
