#pragma once
// Diameter-3 constructions of Bermond, Delorme and Farhi (paper Section
// II-C1): the projective-plane polarity graph P_u, the * product, property
// P*, and the BDF graph P_u * G.
//
// The full-scale BDF sweep of Figure 5b only needs the closed-form model
// (bdf_model) — exactly what the paper plots. The actual graph machinery is
// implemented and verified for small u, demonstrating the construction end
// to end: diameter 3, degree k' = 3(u+1)/2.

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "topo/graph.hpp"
#include "topo/topology.hpp"

namespace slimfly::sf {

/// Closed-form size of a BDF graph for odd prime power u (Section II-C):
/// k' = 3(u+1)/2, Nr = (u+1)(u^2+u+1) = 8/27 k'^3 - 4/9 k'^2 + 2/3 k'.
struct BdfModel {
  int u = 0;
  int k_net = 0;
  long long num_routers = 0;
};
BdfModel bdf_model(int u);

/// Polarity (Erdos–Renyi) graph of PG(2, u): vertices are projective points
/// over GF(u); M ~ M' iff <M, M'> = 0 under the standard bilinear form.
/// u^2+u+1 vertices, degree u or u+1, diameter 2 (Section II-C1b).
Graph polarity_graph(int u);

/// Arc orientation of G1 plus one bijection f per arc, as required by the
/// * product (Section II-C1a).
struct StarArcs {
  std::vector<std::pair<int, int>> arcs;  ///< one orientation per G1 edge
  /// f[a] maps V2 -> V2 for arc a (one-to-one).
  std::vector<std::vector<int>> bijections;
};

/// The * product G1 * G2. Vertices are pairs (a1, a2) numbered
/// a1 * |V2| + a2. (a1,a2) ~ (b1,b2) iff a1 == b1 and {a2,b2} in E2, or
/// (a1,b1) is an arc with b2 = f_(a1,b1)(a2).
Graph star_product(const Graph& g1, const Graph& g2, const StarArcs& arcs);

/// Property P* (Section II-C1c): diameter(G) <= 2 and an involution f with
/// V = {v} ∪ {f(v)} ∪ f(N(v)) ∪ N(f(v)) for every v.
bool has_pstar_property(const Graph& g, const std::vector<int>& involution);

/// Searches for a P* pair (graph on n vertices with degree `degree`,
/// involution) by scanning circulant graphs, the prism family, and seeded
/// random regular graphs. Returns nullopt if the bounded search fails.
struct PStarGraph {
  Graph graph;
  std::vector<int> involution;
};
std::optional<PStarGraph> find_pstar_graph(int n, int degree, int max_tries = 20000);

/// Full BDF topology for small odd prime powers u (graph machinery above);
/// throws std::runtime_error when no P* companion graph is found.
class SlimFlyBDF : public Topology {
 public:
  /// concentration 0 selects ceil(k'/2) as for the diameter-2 networks.
  explicit SlimFlyBDF(int u, int concentration = 0);

  std::string name() const override;
  std::string symbol() const override { return "SF-BDF"; }

  int u() const { return u_; }
  int k_net() const { return 3 * (u_ + 1) / 2; }
  static constexpr int kDiameter = 3;

 private:
  static Graph build(int u);
  int u_;
};

}  // namespace slimfly::sf
