#pragma once
// Physical datacenter layout of a Slim Fly MMS network (paper Section VI-A,
// Figure 10): rack x merges subgroup (0,x,*) with subgroup (1,x,*); racks
// form a fully-connected "graph of racks" with exactly 2q cables between
// every pair, which this module verifies and summarizes for the cost model
// and the design example.

#include <vector>

#include "sf/mms.hpp"

namespace slimfly::sf {

struct MmsLayout {
  int q = 0;
  int num_racks = 0;            ///< q racks
  int routers_per_rack = 0;     ///< 2q
  int endpoints_per_rack = 0;   ///< 2q * p
  long long intra_rack_cables = 0;  ///< per rack: |X|q/2 + |X'|q/2 + q
  long long inter_rack_cables = 0;  ///< per rack pair: 2q
  long long total_electric = 0;     ///< all intra-rack router cables
  long long total_fiber = 0;        ///< all inter-rack router cables
};

/// Computes and cross-checks the layout against the actual graph; throws
/// std::logic_error if the structural invariants do not hold.
MmsLayout compute_layout(const SlimFlyMMS& topo);

/// Cables between rack i and rack j counted from the graph (i != j).
long long cables_between_racks(const SlimFlyMMS& topo, int rack_i, int rack_j);

}  // namespace slimfly::sf
