#pragma once
// Design-space enumeration (paper Section VII-A): all balanced Slim Fly and
// Dragonfly configurations up to a target endpoint count, used both by the
// library's "pick me a network" helper and by the sec7a bench.

#include <optional>
#include <vector>

namespace slimfly::sf {

struct SlimFlyConfig {
  int q = 0;
  int delta = 0;
  int k_net = 0;        ///< network radix k'
  int concentration = 0;///< balanced p = ceil(k'/2)
  int router_radix = 0; ///< k = k' + p
  int num_routers = 0;  ///< 2 q^2
  int num_endpoints = 0;
};

struct DragonflyConfig {
  int p = 0, a = 0, h = 0, g = 0;
  int router_radix = 0;
  int num_routers = 0;
  int num_endpoints = 0;
};

/// All balanced (full-global-bandwidth) Slim Fly configurations with
/// N <= max_endpoints, ordered by N. Reproduces the paper's count of 11
/// for max_endpoints = 20000.
std::vector<SlimFlyConfig> enumerate_slimfly(int max_endpoints);

/// All balanced Dragonflies (a = 2p = 2h, g = a h + 1) with N <= max.
std::vector<DragonflyConfig> enumerate_dragonfly(int max_endpoints);

/// Smallest balanced Slim Fly with at least min_endpoints endpoints, if one
/// exists below 4 * min_endpoints (design helper used by the examples).
std::optional<SlimFlyConfig> pick_slimfly(int min_endpoints);

/// Balanced Slim Fly closest in endpoint count to `target`.
std::optional<SlimFlyConfig> closest_slimfly(int target_endpoints);

}  // namespace slimfly::sf
