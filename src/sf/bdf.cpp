#include "sf/bdf.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <queue>
#include <stdexcept>

#include "gf/gf.hpp"
#include "util/numtheory.hpp"
#include "util/rng.hpp"

namespace slimfly::sf {

BdfModel bdf_model(int u) {
  auto pp = as_prime_power(u);
  if (!pp || u % 2 == 0) {
    throw std::invalid_argument("bdf_model: u must be an odd prime power");
  }
  BdfModel model;
  model.u = u;
  model.k_net = 3 * (u + 1) / 2;
  model.num_routers = static_cast<long long>(u + 1) *
                      (static_cast<long long>(u) * u + u + 1);
  return model;
}

Graph polarity_graph(int u) {
  auto pp = as_prime_power(u);
  if (!pp) throw std::invalid_argument("polarity_graph: u must be a prime power");
  gf::Field f(u);

  // Canonical projective points: (1,b,c), (0,1,c), (0,0,1).
  std::vector<std::array<int, 3>> points;
  for (int b = 0; b < u; ++b) {
    for (int c = 0; c < u; ++c) points.push_back({1, b, c});
  }
  for (int c = 0; c < u; ++c) points.push_back({0, 1, c});
  points.push_back({0, 0, 1});

  int n = static_cast<int>(points.size());
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const auto& pi = points[static_cast<std::size_t>(i)];
      const auto& pj = points[static_cast<std::size_t>(j)];
      int dot = f.add(f.add(f.mul(pi[0], pj[0]), f.mul(pi[1], pj[1])),
                      f.mul(pi[2], pj[2]));
      if (dot == 0) g.add_edge(i, j);
    }
  }
  g.finalize();
  return g;
}

Graph star_product(const Graph& g1, const Graph& g2, const StarArcs& arcs) {
  int n2 = g2.num_vertices();
  if (arcs.bijections.size() != arcs.arcs.size()) {
    throw std::invalid_argument("star_product: arcs/bijections size mismatch");
  }
  Graph g(g1.num_vertices() * n2);
  // Rule 1: same G1 vertex, G2 edge.
  for (int a1 = 0; a1 < g1.num_vertices(); ++a1) {
    for (const auto& [u, v] : g2.edges()) {
      g.add_edge(a1 * n2 + u, a1 * n2 + v);
    }
  }
  // Rule 2: per-arc bijection.
  for (std::size_t a = 0; a < arcs.arcs.size(); ++a) {
    auto [from, to] = arcs.arcs[a];
    const auto& f = arcs.bijections[a];
    if (static_cast<int>(f.size()) != n2) {
      throw std::invalid_argument("star_product: bijection arity mismatch");
    }
    for (int a2 = 0; a2 < n2; ++a2) {
      g.add_edge(from * n2 + a2, to * n2 + f[static_cast<std::size_t>(a2)]);
    }
  }
  g.finalize();
  return g;
}

bool has_pstar_property(const Graph& g, const std::vector<int>& involution) {
  int n = g.num_vertices();
  if (static_cast<int>(involution.size()) != n) return false;
  for (int v = 0; v < n; ++v) {
    int fv = involution[static_cast<std::size_t>(v)];
    if (fv < 0 || fv >= n) return false;
    if (involution[static_cast<std::size_t>(fv)] != v) return false;  // not an involution
  }
  // Diameter <= 2 check via neighbourhood cover.
  for (int v = 0; v < n; ++v) {
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    seen[static_cast<std::size_t>(v)] = true;
    for (int w : g.neighbors(v)) {
      seen[static_cast<std::size_t>(w)] = true;
      for (int z : g.neighbors(w)) seen[static_cast<std::size_t>(z)] = true;
    }
    if (std::find(seen.begin(), seen.end(), false) != seen.end()) return false;
  }
  // Covering condition.
  for (int v = 0; v < n; ++v) {
    std::vector<bool> covered(static_cast<std::size_t>(n), false);
    int fv = involution[static_cast<std::size_t>(v)];
    covered[static_cast<std::size_t>(v)] = true;
    covered[static_cast<std::size_t>(fv)] = true;
    for (int w : g.neighbors(v)) {
      covered[static_cast<std::size_t>(involution[static_cast<std::size_t>(w)])] = true;
    }
    for (int w : g.neighbors(fv)) covered[static_cast<std::size_t>(w)] = true;
    if (std::find(covered.begin(), covered.end(), false) != covered.end()) return false;
  }
  return true;
}

namespace {

/// Random near-regular graph via stub matching (small n; retries internally).
Graph random_regular(int n, int degree, Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<int> stubs;
    for (int v = 0; v < n; ++v) {
      for (int d = 0; d < degree; ++d) stubs.push_back(v);
    }
    std::shuffle(stubs.begin(), stubs.end(), rng);
    std::vector<std::pair<int, int>> edges;
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      int u = stubs[i], v = stubs[i + 1];
      if (u == v ||
          std::find(adj[static_cast<std::size_t>(u)].begin(),
                    adj[static_cast<std::size_t>(u)].end(),
                    v) != adj[static_cast<std::size_t>(u)].end()) {
        ok = false;
        break;
      }
      adj[static_cast<std::size_t>(u)].push_back(v);
      adj[static_cast<std::size_t>(v)].push_back(u);
      edges.emplace_back(u, v);
    }
    if (!ok) continue;
    Graph g(n);
    for (auto [u, v] : edges) g.add_edge(u, v);
    g.finalize();
    return g;
  }
  return Graph(0);  // caller treats an empty graph as failure
}

}  // namespace

std::optional<PStarGraph> find_pstar_graph(int n, int degree, int max_tries) {
  if (n < 2 || degree < 1 || degree >= n) return std::nullopt;
  Rng rng(std::uint64_t{0xbdf} * static_cast<std::uint64_t>(n) +
          static_cast<std::uint64_t>(degree));

  // Candidate involutions: the antipodal map v -> v + n/2 (n even), the
  // reflection v -> n-1-v, and random fixed-point-free involutions.
  auto try_graph = [&](const Graph& g) -> std::optional<PStarGraph> {
    if (g.num_vertices() != n) return std::nullopt;
    std::vector<std::vector<int>> candidates;
    if (n % 2 == 0) {
      std::vector<int> anti(static_cast<std::size_t>(n));
      for (int v = 0; v < n; ++v) anti[static_cast<std::size_t>(v)] = (v + n / 2) % n;
      candidates.push_back(std::move(anti));
    }
    std::vector<int> refl(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) refl[static_cast<std::size_t>(v)] = n - 1 - v;
    candidates.push_back(std::move(refl));
    for (int t = 0; t < 32 && n % 2 == 0; ++t) {
      std::vector<int> perm(static_cast<std::size_t>(n));
      for (int v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
      std::shuffle(perm.begin(), perm.end(), rng);
      std::vector<int> inv(static_cast<std::size_t>(n));
      for (int i = 0; i < n; i += 2) {
        inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
            perm[static_cast<std::size_t>(i + 1)];
        inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i + 1)])] =
            perm[static_cast<std::size_t>(i)];
      }
      candidates.push_back(std::move(inv));
    }
    for (auto& f : candidates) {
      if (has_pstar_property(g, f)) return PStarGraph{g, f};
    }
    return std::nullopt;
  };

  // Circulant graphs C_n(S) over all stride sets of the right size.
  if (degree % 2 == 0 || n % 2 == 0) {
    std::vector<int> strides;
    for (int s = 1; s <= n / 2; ++s) strides.push_back(s);
    // Enumerate stride subsets greedily up to a bound: prefer small sets.
    int half = degree / 2;
    bool needs_antipodal = degree % 2 == 1;  // stride n/2 contributes 1
    std::vector<int> pick(static_cast<std::size_t>(half));
    std::function<std::optional<PStarGraph>(int, int)> rec =
        [&](int start, int depth) -> std::optional<PStarGraph> {
      if (depth == half) {
        Graph g(n);
        for (int v = 0; v < n; ++v) {
          for (int d = 0; d < half; ++d) {
            g.add_edge(v, (v + pick[static_cast<std::size_t>(d)]) % n);
          }
          if (needs_antipodal && v < n / 2) g.add_edge(v, v + n / 2);
        }
        g.finalize();
        if (!g.is_regular() || g.max_degree() != degree) return std::nullopt;
        return try_graph(g);
      }
      for (int s = start; s <= (n - 1) / 2; ++s) {
        pick[static_cast<std::size_t>(depth)] = s;
        if (auto r = rec(s + 1, depth + 1)) return r;
      }
      return std::nullopt;
    };
    if (auto r = rec(1, 0)) return r;
  }

  // Random regular graphs with random involutions.
  for (int t = 0; t < max_tries; ++t) {
    Graph g = random_regular(n, degree, rng);
    if (auto r = try_graph(g)) return r;
  }
  return std::nullopt;
}

namespace {

int bfs_ecc(const Graph& g, int source) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::queue<int> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  int ecc = 0;
  while (!queue.empty()) {
    int v = queue.front();
    queue.pop();
    for (int w : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(w)] < 0) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
        ecc = std::max(ecc, dist[static_cast<std::size_t>(w)]);
        queue.push(w);
      }
    }
  }
  for (int d : dist) {
    if (d < 0) return -1;  // disconnected
  }
  return ecc;
}

int graph_diameter(const Graph& g) {
  int diameter = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    int e = bfs_ecc(g, v);
    if (e < 0) return -1;
    diameter = std::max(diameter, e);
  }
  return diameter;
}

}  // namespace

Graph SlimFlyBDF::build(int u) {
  auto model = bdf_model(u);  // validates u
  Graph p_u = polarity_graph(u);
  int n2 = u + 1;
  int deg2 = (u + 1) / 2;
  auto pstar = find_pstar_graph(n2, deg2);
  if (!pstar) {
    throw std::runtime_error("SlimFlyBDF: no P* companion graph found for u=" +
                             std::to_string(u));
  }

  // Orientation: each G1 edge becomes one arc with the P* involution as its
  // bijection; if that misses diameter 3 (the theorem's corner case, see
  // DESIGN.md), retry with randomized per-arc bijections built from the
  // involution composed with graph automorphism-ish shuffles.
  auto edges = p_u.edges();
  StarArcs arcs;
  arcs.arcs = edges;
  arcs.bijections.assign(edges.size(), pstar->involution);
  Graph g = star_product(p_u, pstar->graph, arcs);
  if (graph_diameter(g) <= 3) return g;

  Rng rng(std::uint64_t{0xabc0} + static_cast<std::uint64_t>(u));
  std::vector<int> identity(static_cast<std::size_t>(n2));
  for (int i = 0; i < n2; ++i) identity[static_cast<std::size_t>(i)] = i;
  for (int attempt = 0; attempt < 64; ++attempt) {
    for (auto& f : arcs.bijections) {
      f = rng.bernoulli(0.5) ? pstar->involution : identity;
    }
    g = star_product(p_u, pstar->graph, arcs);
    if (graph_diameter(g) <= 3) return g;
  }
  // Last resort: fully random per-arc bijections.
  for (int attempt = 0; attempt < 256; ++attempt) {
    for (auto& f : arcs.bijections) {
      f = identity;
      std::shuffle(f.begin(), f.end(), rng);
    }
    g = star_product(p_u, pstar->graph, arcs);
    if (graph_diameter(g) <= 3) return g;
  }
  throw std::runtime_error("SlimFlyBDF: could not realize diameter 3 for u=" +
                           std::to_string(u));
  (void)model;
}

SlimFlyBDF::SlimFlyBDF(int u, int concentration)
    : Topology(build(u),
               concentration == 0 ? (3 * (u + 1) / 2 + 1) / 2 : concentration,
               (u + 1) * (u * u + u + 1)),
      u_(u) {}

std::string SlimFlyBDF::name() const {
  return "Slim Fly BDF (u=" + std::to_string(u_) + ")";
}

}  // namespace slimfly::sf
