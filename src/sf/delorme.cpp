#include "sf/delorme.hpp"

#include <stdexcept>

#include "util/numtheory.hpp"

namespace slimfly::sf {

DelormeModel delorme_model(int v) {
  if (!as_prime_power(v)) {
    throw std::invalid_argument("delorme_model: v must be a prime power");
  }
  DelormeModel model;
  model.v = v;
  long long vp1 = v + 1;
  long long v2p1 = static_cast<long long>(v) * v + 1;
  model.k_net = vp1 * vp1;
  model.num_routers = vp1 * vp1 * v2p1 * v2p1;
  return model;
}

std::vector<DelormeModel> delorme_family(int max_k_net) {
  std::vector<DelormeModel> family;
  for (int v = 2; (v + 1) * (v + 1) <= max_k_net; ++v) {
    if (!as_prime_power(v)) continue;
    family.push_back(delorme_model(v));
  }
  return family;
}

}  // namespace slimfly::sf
