// Quickstart: build a Slim Fly, inspect its structure, run a short
// simulation, and price the network.
//
//   ./build/examples/quickstart [q]

#include <cstdlib>
#include <iostream>

#include "slimfly.hpp"

int main(int argc, char** argv) {
  using namespace slimfly;

  int q = argc > 1 ? std::atoi(argv[1]) : 7;
  if (!sf::is_valid_mms_q(q)) {
    std::cerr << "q=" << q << " is not a prime power with q mod 4 != 2\n";
    return 1;
  }

  // 1. Build the topology (balanced concentration p = ceil(k'/2)).
  sf::SlimFlyMMS topo(q);
  std::cout << topo.name() << "\n"
            << "  routers        " << topo.num_routers() << "\n"
            << "  endpoints      " << topo.num_endpoints() << "\n"
            << "  network radix  " << topo.k_net() << "\n"
            << "  router radix   " << topo.router_radix() << "\n"
            << "  diameter       " << analysis::diameter(topo.graph()) << "\n"
            << "  avg distance   "
            << analysis::average_endpoint_distance(topo) << " hops\n";

  // 2. Simulate uniform traffic at 40% load with UGAL-L routing.
  auto routing = sim::make_routing(sim::RoutingKind::UgalL, topo);
  auto traffic = sim::make_uniform(topo.num_endpoints());
  sim::SimConfig cfg;
  cfg.warmup_cycles = 1000;
  cfg.measure_cycles = 1000;
  auto result = sim::simulate(topo, *routing.algorithm, *traffic, cfg, 0.4);
  std::cout << "\nUGAL-L @ 40% uniform load:\n"
            << "  avg latency    " << result.avg_latency << " cycles\n"
            << "  accepted load  " << result.accepted_load << "\n"
            << "  saturated      " << (result.saturated ? "yes" : "no") << "\n";

  // 3. Price it (Mellanox FDR10 cost model from the paper).
  auto cost_result = cost::evaluate_cost(topo, cost::cable_fdr10());
  std::cout << "\nCost model (FDR10):\n"
            << "  total cost     $" << static_cast<long long>(cost_result.total_cost)
            << "\n  per endpoint   $"
            << static_cast<long long>(cost_result.cost_per_endpoint)
            << "\n  power/endpoint " << cost_result.watts_per_endpoint << " W\n";
  return 0;
}
