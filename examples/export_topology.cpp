// Topology library generator: emit the paper's "library of practical
// topologies" — edge lists (and optionally DOT) for every balanced Slim Fly
// up to a size bound, ready for external simulators or subnet managers.
//
//   ./build/examples/export_topology [max_endpoints] [output_dir]

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "slimfly.hpp"

int main(int argc, char** argv) {
  using namespace slimfly;

  int max_endpoints = argc > 1 ? std::atoi(argv[1]) : 20000;
  std::string dir = argc > 2 ? argv[2] : "slimfly_library";
  std::filesystem::create_directories(dir);

  Table table({"file", "q", "k'", "p", "k", "routers", "endpoints"});
  for (const auto& config : sf::enumerate_slimfly(max_endpoints)) {
    sf::SlimFlyMMS topo(config.q);
    std::string base = dir + "/sf_q" + std::to_string(config.q);
    save_edge_list(base + ".edges", topo.graph());
    {
      std::ofstream dot(base + ".dot");
      write_dot(dot, topo);
    }
    table.add_row({base + ".edges", Table::num(config.q), Table::num(config.k_net),
                   Table::num(config.concentration), Table::num(config.router_radix),
                   Table::num(config.num_routers), Table::num(config.num_endpoints)});
  }
  table.print(std::cout);
  std::cout << "\nWrote edge lists + DOT files to " << dir << "/\n"
            << "Each .edges file is a router-level adjacency list; attach\n"
            << "p endpoints to every router for the balanced configuration.\n";
  return 0;
}
