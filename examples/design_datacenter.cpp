// Datacenter design study: given a target endpoint count, pick the best
// balanced Slim Fly, lay it out in racks (paper Section VI-A), and compare
// cost and power against a Dragonfly alternative.
//
//   ./build/examples/design_datacenter [target_endpoints]

#include <cstdlib>
#include <iostream>

#include "slimfly.hpp"

int main(int argc, char** argv) {
  using namespace slimfly;

  int target = argc > 1 ? std::atoi(argv[1]) : 10000;
  auto config = sf::pick_slimfly(target);
  if (!config) {
    std::cerr << "no balanced Slim Fly with >= " << target << " endpoints in range\n";
    return 1;
  }
  std::cout << "Target: " << target << " endpoints\n"
            << "Chosen Slim Fly: q=" << config->q << ", k'=" << config->k_net
            << ", p=" << config->concentration << ", k=" << config->router_radix
            << ", Nr=" << config->num_routers << ", N=" << config->num_endpoints
            << "\n\n";

  sf::SlimFlyMMS topo(config->q);
  auto layout = sf::compute_layout(topo);
  std::cout << "Physical layout (Section VI-A):\n"
            << "  racks                 " << layout.num_racks << "\n"
            << "  routers per rack      " << layout.routers_per_rack << "\n"
            << "  endpoints per rack    " << layout.endpoints_per_rack << "\n"
            << "  cables inside a rack  " << layout.intra_rack_cables << "\n"
            << "  cables per rack pair  " << layout.inter_rack_cables
            << " (2q, the Dragonfly has 1)\n\n";

  // Closest balanced Dragonfly for comparison.
  Dragonfly* best_df = nullptr;
  std::unique_ptr<Dragonfly> df_owner;
  for (int p = 2; p < 32; ++p) {
    auto df = Dragonfly::balanced(p);
    if (df->num_endpoints() >= target) {
      df_owner = std::move(df);
      best_df = df_owner.get();
      break;
    }
  }

  auto cables = cost::cable_fdr10();
  auto sf_cost = cost::evaluate_cost(topo, cables);
  Table table({"design", "N", "routers", "radix", "$_per_node", "W_per_node"});
  table.add_row({"Slim Fly", Table::num(static_cast<std::int64_t>(sf_cost.num_endpoints)),
                 Table::num(static_cast<std::int64_t>(sf_cost.num_routers)),
                 Table::num(static_cast<std::int64_t>(sf_cost.router_radix)),
                 Table::num(sf_cost.cost_per_endpoint, 0),
                 Table::num(sf_cost.watts_per_endpoint, 2)});
  if (best_df) {
    auto df_cost = cost::evaluate_cost(*best_df, cables);
    table.add_row({"Dragonfly", Table::num(static_cast<std::int64_t>(df_cost.num_endpoints)),
                   Table::num(static_cast<std::int64_t>(df_cost.num_routers)),
                   Table::num(static_cast<std::int64_t>(df_cost.router_radix)),
                   Table::num(df_cost.cost_per_endpoint, 0),
                   Table::num(df_cost.watts_per_endpoint, 2)});
  }
  table.print(std::cout);

  std::cout << "\nResiliency check (connectivity under random link failures):\n";
  analysis::ResilienceOptions opts;
  opts.trials = 6;
  std::cout << "  Slim Fly survives " << analysis::max_failures_connected(topo.graph(), opts)
            << "% random cable failures\n";
  return 0;
}
