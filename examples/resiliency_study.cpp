// Resiliency study: degrade a Slim Fly and a Dragonfly by removing random
// cables and watch connectivity, diameter and average path length — the
// paper's counter-intuitive result that SF (fewer cables, lower diameter)
// tolerates MORE failures than DF (Section III-D).
//
//   ./build/examples/resiliency_study [q]

#include <cstdlib>
#include <iostream>

#include "slimfly.hpp"

int main(int argc, char** argv) {
  using namespace slimfly;

  int q = argc > 1 ? std::atoi(argv[1]) : 7;
  sf::SlimFlyMMS sf_topo(q);
  auto df = Dragonfly::balanced(3);  // comparable small network

  std::cout << "Slim Fly:  " << sf_topo.name() << " (" << sf_topo.graph().num_edges()
            << " cables)\n"
            << "Dragonfly: " << df->name() << " (" << df->graph().num_edges()
            << " cables)\n\n";

  Table table({"failures_%", "SF_connected", "SF_diameter", "SF_avg_dist",
               "DF_connected", "DF_diameter", "DF_avg_dist"});
  for (int percent = 0; percent <= 60; percent += 10) {
    auto degrade = [&](const Graph& g, std::uint64_t seed) {
      return analysis::remove_random_links(g, g.num_edges() * percent / 100, seed);
    };
    Graph sf_damaged = degrade(sf_topo.graph(), 42);
    Graph df_damaged = degrade(df->graph(), 42);
    auto fmt = [](const Graph& g) {
      int d = analysis::diameter(g);
      double a = analysis::average_distance(g);
      return std::pair<std::string, std::string>{
          d < 0 ? std::string("-") : std::to_string(d),
          a < 0 ? std::string("-") : Table::num(a, 2)};
    };
    auto [sf_d, sf_a] = fmt(sf_damaged);
    auto [df_d, df_a] = fmt(df_damaged);
    table.add_row({Table::num(static_cast<std::int64_t>(percent)),
                   analysis::is_connected(sf_damaged) ? "yes" : "NO", sf_d, sf_a,
                   analysis::is_connected(df_damaged) ? "yes" : "NO", df_d, df_a});
  }
  table.print(std::cout);

  analysis::ResilienceOptions opts;
  opts.trials = 8;
  std::cout << "\nMax removable fraction (connectivity, sampled):\n"
            << "  Slim Fly  " << analysis::max_failures_connected(sf_topo.graph(), opts)
            << "%\n"
            << "  Dragonfly " << analysis::max_failures_connected(df->graph(), opts)
            << "%\n";
  return 0;
}
