// Traffic study: compare the four Slim Fly routing algorithms across the
// paper's workload classes (graph-computation-style uniform traffic,
// stencil/collective permutations, adversarial worst case) on one network —
// expressed as a single ExperimentSpec and run in parallel by the
// ExperimentEngine (SF_THREADS workers, 0/unset = all cores).
//
//   ./build/traffic_study [q] [load]

#include <cstdlib>
#include <iostream>

#include "slimfly.hpp"

int main(int argc, char** argv) {
  using namespace slimfly;

  int q = argc > 1 ? std::atoi(argv[1]) : 7;
  double load = argc > 2 ? std::atof(argv[2]) : 0.3;

  sim::SimConfig cfg;
  cfg.warmup_cycles = 1000;
  cfg.measure_cycles = 1200;

  // The whole study is one declarative cross product; the engine builds the
  // topology and its distance table once and fans the points out.
  auto spec = exp::ExperimentSpec::cross(
      "traffic_study", {"slimfly:q=" + std::to_string(q)},
      {"MIN", "VAL", "UGAL-L", "UGAL-G"},
      {"uniform", "shuffle", "bitrev", "bitcomp", "shift", "worst-sf"},
      {load}, cfg);

  exp::ExperimentEngine engine;
  auto results = engine.run(spec);

  std::cout << "slimfly:q=" << q << " @ offered load " << load << " ("
            << engine.threads() << " threads)\n\n";
  Table table({"traffic", "routing", "latency", "accepted", "saturated"});
  for (const auto& r : results) {
    const auto& series = spec.series[r.series_index];
    table.add_row({series.traffic, series.routing,
                   Table::num(r.result.avg_latency, 1),
                   Table::num(r.result.accepted_load, 3),
                   r.result.saturated ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nReading guide: MIN wins on uniform; VAL pays double hops;\n"
               "UGAL adapts — near MIN on benign traffic, near VAL on the\n"
               "worst case (paper Section V).\n";
  return 0;
}
