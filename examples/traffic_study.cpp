// Traffic study: compare the four Slim Fly routing algorithms across the
// paper's workload classes (graph-computation-style uniform traffic,
// stencil/collective permutations, adversarial worst case) on one network.
//
//   ./build/examples/traffic_study [q] [load]

#include <cstdlib>
#include <iostream>

#include "slimfly.hpp"

int main(int argc, char** argv) {
  using namespace slimfly;

  int q = argc > 1 ? std::atoi(argv[1]) : 7;
  double load = argc > 2 ? std::atof(argv[2]) : 0.3;
  sf::SlimFlyMMS topo(q);
  std::cout << topo.name() << " @ offered load " << load << "\n\n";

  sim::SimConfig cfg;
  cfg.warmup_cycles = 1000;
  cfg.measure_cycles = 1200;

  auto dist = std::make_shared<sim::DistanceTable>(topo.graph());
  Table table({"traffic", "routing", "latency", "accepted", "saturated"});

  struct NamedTraffic {
    std::string name;
    std::function<std::unique_ptr<sim::TrafficPattern>()> make;
  };
  std::vector<NamedTraffic> patterns = {
      {"uniform", [&] { return sim::make_uniform(topo.num_endpoints()); }},
      {"shuffle", [&] { return sim::make_shuffle(topo.num_endpoints()); }},
      {"bit-reversal", [&] { return sim::make_bit_reversal(topo.num_endpoints()); }},
      {"bit-complement", [&] { return sim::make_bit_complement(topo.num_endpoints()); }},
      {"shift", [&] { return sim::make_shift(topo.num_endpoints()); }},
      {"worst-case", [&] { return sim::make_worst_case_sf(topo); }},
  };

  for (const auto& pattern : patterns) {
    for (auto kind : {sim::RoutingKind::Minimal, sim::RoutingKind::Valiant,
                      sim::RoutingKind::UgalL, sim::RoutingKind::UgalG}) {
      auto routing = sim::make_routing(kind, topo, dist);
      auto traffic = pattern.make();
      auto r = sim::simulate(topo, *routing.algorithm, *traffic, cfg, load);
      table.add_row({pattern.name, sim::to_string(kind),
                     Table::num(r.avg_latency, 1), Table::num(r.accepted_load, 3),
                     r.saturated ? "yes" : "no"});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading guide: MIN wins on uniform; VAL pays double hops;\n"
               "UGAL adapts — near MIN on benign traffic, near VAL on the\n"
               "worst case (paper Section V).\n";
  return 0;
}
